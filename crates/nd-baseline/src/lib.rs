//! Naive baselines against which the paper's machinery is compared.
//!
//! These implement the same observable behaviours — distance testing,
//! per-tuple query testing, lexicographic enumeration — with the obvious
//! algorithms and no preprocessing beyond what the algorithm inherently
//! needs. The experiment harness (EXPERIMENTS.md) measures them head-to-head
//! against the indexed structures of `nd-core`:
//!
//! * [`BfsDistanceBaseline`] vs. the distance oracle (Prop 4.2 / E4);
//! * [`NaiveTester`] vs. constant-time testing (Cor 2.4 / E6);
//! * [`NaiveEnumerator`] (nested loops with pruning, no index) and
//!   [`MaterializingEnumerator`] (full precomputation) vs. constant-delay
//!   enumeration (Cor 2.5 / E7).

use nd_graph::{BfsScratch, ColoredGraph, Vertex};
use nd_logic::ast::Query;
use nd_logic::eval::{eval, eval_in, Assignment, EvalCtx};

/// Distance testing by on-demand capped BFS — no preprocessing at all.
pub struct BfsDistanceBaseline<'g> {
    g: &'g ColoredGraph,
    scratch: BfsScratch,
}

impl<'g> BfsDistanceBaseline<'g> {
    pub fn new(g: &'g ColoredGraph) -> Self {
        BfsDistanceBaseline {
            g,
            scratch: BfsScratch::new(g.n()),
        }
    }

    /// `dist(a, b) ≤ r`? Cost `O(‖N_r(a)‖)` per call.
    pub fn test(&mut self, a: Vertex, b: Vertex, r: u32) -> bool {
        self.scratch.distance_capped(self.g, a, b, r).is_some()
    }
}

/// Per-tuple query testing by direct formula evaluation (data complexity
/// `O(n^{qr})` per call).
pub struct NaiveTester<'g> {
    g: &'g ColoredGraph,
    q: Query,
}

impl<'g> NaiveTester<'g> {
    pub fn new(g: &'g ColoredGraph, q: Query) -> Self {
        NaiveTester { g, q }
    }

    pub fn test(&self, tuple: &[Vertex]) -> bool {
        eval(self.g, &self.q, tuple)
    }
}

/// Streaming nested-loop enumeration in lexicographic order, with no
/// preprocessing: the delay between consecutive outputs is the time the
/// loops spend between satisfying tuples — the quantity that grows with `n`
/// and that constant-delay enumeration flattens.
pub struct NaiveEnumerator<'g> {
    ctx: EvalCtx<'g>,
    q: Query,
    n: Vertex,
    /// Next candidate tuple to try, or `None` when exhausted.
    cursor: Option<Vec<Vertex>>,
}

impl<'g> NaiveEnumerator<'g> {
    pub fn new(g: &'g ColoredGraph, q: Query) -> Self {
        let k = q.arity();
        let cursor = if g.n() == 0 && k > 0 {
            None
        } else {
            Some(vec![0; k])
        };
        NaiveEnumerator {
            ctx: EvalCtx::new(g),
            q,
            n: g.n() as Vertex,
            cursor,
        }
    }

    fn advance(n: Vertex, t: &mut [Vertex]) -> bool {
        for i in (0..t.len()).rev() {
            if t[i] + 1 < n {
                t[i] += 1;
                return true;
            }
            t[i] = 0;
        }
        false
    }
}

impl Iterator for NaiveEnumerator<'_> {
    type Item = Vec<Vertex>;

    fn next(&mut self) -> Option<Vec<Vertex>> {
        let cursor = self.cursor.as_mut()?;
        if cursor.is_empty() {
            // Boolean query: at most one (empty) answer.
            let mut asg: Assignment = Vec::new();
            let holds = eval_in(&mut self.ctx, &self.q.formula, &mut asg);
            self.cursor = None;
            return holds.then(Vec::new);
        }
        loop {
            let mut asg: Assignment = Vec::new();
            for (v, &a) in self.q.free.clone().iter().zip(cursor.iter()) {
                if asg.len() <= v.0 as usize {
                    asg.resize(v.0 as usize + 1, None);
                }
                asg[v.0 as usize] = Some(a);
            }
            let holds = eval_in(&mut self.ctx, &self.q.formula, &mut asg);
            let out = holds.then(|| cursor.clone());
            if !Self::advance(self.n, cursor) {
                self.cursor = None;
                return out;
            }
            if let Some(out) = out {
                return Some(out);
            }
        }
    }
}

/// Full materialization followed by zero-cost iteration: the
/// maximum-preprocessing baseline (linear-in-output index size).
pub struct MaterializingEnumerator {
    solutions: Vec<Vec<Vertex>>,
}

impl MaterializingEnumerator {
    pub fn prepare(g: &ColoredGraph, q: &Query) -> Self {
        MaterializingEnumerator {
            solutions: nd_logic::eval::materialize(g, q),
        }
    }

    pub fn len(&self) -> usize {
        self.solutions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.solutions.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Vec<Vertex>> {
        self.solutions.iter()
    }

    /// The full solution set, sorted lexicographically and duplicate-free
    /// (the order `materialize` guarantees). This is the reference answer
    /// the conformance harness diffs every engine against.
    pub fn solutions(&self) -> &[Vec<Vertex>] {
        &self.solutions
    }

    /// `ā ∈ q(G)`? — by binary search over the materialized set.
    pub fn test(&self, tuple: &[Vertex]) -> bool {
        self.solutions
            .binary_search_by(|s| s.as_slice().cmp(tuple))
            .is_ok()
    }

    /// The lexicographically smallest solution `≥ from`, or `None` — the
    /// same contract as `PreparedQuery::next_solution`, answered by
    /// partition point.
    pub fn next_solution(&self, from: &[Vertex]) -> Option<Vec<Vertex>> {
        let i = self.solutions.partition_point(|s| s.as_slice() < from);
        self.solutions.get(i).cloned()
    }

    /// Up to `limit` solutions `≥ from`, in lexicographic order — the same
    /// contract as `PreparedQuery::page`.
    pub fn page(&self, from: &[Vertex], limit: usize) -> Vec<Vec<Vertex>> {
        let i = self.solutions.partition_point(|s| s.as_slice() < from);
        self.solutions[i..].iter().take(limit).cloned().collect()
    }

    pub fn count(&self) -> usize {
        self.solutions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_graph::generators;
    use nd_logic::parse_query;

    fn blue_path(n: usize) -> ColoredGraph {
        let mut g = generators::path(n);
        let blue: Vec<Vertex> = (0..n as Vertex).filter(|v| v % 2 == 0).collect();
        g.add_color(blue, Some("Blue".into()));
        g
    }

    #[test]
    fn bfs_baseline_is_correct() {
        let g = generators::grid(6, 6);
        let mut b = BfsDistanceBaseline::new(&g);
        assert!(b.test(0, 7, 2));
        assert!(!b.test(0, 35, 4));
    }

    #[test]
    fn naive_enumerator_matches_materialization() {
        let g = blue_path(12);
        let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
        let stream: Vec<_> = NaiveEnumerator::new(&g, q.clone()).collect();
        let mat = MaterializingEnumerator::prepare(&g, &q);
        assert_eq!(stream, mat.iter().cloned().collect::<Vec<_>>());
        assert!(!mat.is_empty());
    }

    #[test]
    fn naive_enumerator_boolean() {
        let g = blue_path(4);
        let yes: Vec<_> =
            NaiveEnumerator::new(&g, parse_query("exists x. Blue(x)").unwrap()).collect();
        assert_eq!(yes, vec![Vec::<Vertex>::new()]);
        let no: Vec<_> =
            NaiveEnumerator::new(&g, parse_query("exists x. (Blue(x) && !Blue(x))").unwrap())
                .collect();
        assert!(no.is_empty());
    }

    #[test]
    fn tester_is_eval() {
        let g = blue_path(8);
        let t = NaiveTester::new(&g, parse_query("Blue(x) && E(x,y)").unwrap());
        assert!(t.test(&[0, 1]));
        assert!(!t.test(&[1, 2]));
    }

    #[test]
    fn materialized_oracle_accessors() {
        let g = blue_path(10);
        let q = parse_query("Blue(x) && dist(x,y) <= 2").unwrap();
        let mat = MaterializingEnumerator::prepare(&g, &q);
        assert_eq!(mat.count(), mat.solutions().len());
        for s in mat.solutions() {
            assert!(mat.test(s));
            assert_eq!(mat.next_solution(s).as_deref(), Some(s.as_slice()));
        }
        assert!(!mat.test(&[1, 1]));
        // next_solution from the very bottom is the first solution; from
        // beyond the last it is None.
        assert_eq!(
            mat.next_solution(&[0, 0]).as_deref(),
            mat.solutions().first().map(|s| s.as_slice())
        );
        assert_eq!(mat.next_solution(&[9, 10]), None);
        // Paging reassembles the full stream.
        let mut pages = Vec::new();
        let mut from = vec![0, 0];
        loop {
            let page = mat.page(&from, 3);
            let done = page.len() < 3;
            pages.extend(page);
            if done {
                break;
            }
            let mut next = pages.last().unwrap().clone();
            *next.last_mut().unwrap() += 1; // lex increment within range
            from = next;
        }
        assert_eq!(pages, mat.solutions());
    }

    #[test]
    fn empty_graph() {
        let g = generators::path(0);
        let q = parse_query("E(x,y)").unwrap();
        assert_eq!(NaiveEnumerator::new(&g, q).count(), 0);
    }
}
