//! End-to-end relational pipeline (Lemma 2.2): a relational database is
//! reduced to its colored adjacency graph `A'(D)`, the query is rewritten,
//! and the colored-graph machinery answers it.
//!
//! The database is a sparse citation-style schema:
//!   `Cites(paper, paper)`, `InArea(paper)` (a unary "database theory" flag).
//!
//! ```sh
//! cargo run --release --example relational_db
//! ```

use nowhere_dense::core::{PrepareOpts, PreparedQuery};
use nowhere_dense::graph::relational::{adjacency_graph, RelationalDb};
use nowhere_dense::logic::relational::rewrite_to_graph;
use nowhere_dense::logic::{eval::materialize_db, parse_query};
use std::time::Instant;

fn main() {
    // Build a sparse random citation database: each paper cites a handful
    // of earlier papers (bounded out-degree keeps the adjacency graph in a
    // sparse regime).
    let papers = 4_000u32;
    let mut cites = Vec::new();
    let mut state = 0xabcdef1234u64;
    let mut rnd = |m: u32| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % m.max(1) as u64) as u32
    };
    for p in 1..papers {
        for _ in 0..3 {
            cites.push(vec![p, rnd(p)]);
        }
    }
    let db_theory: Vec<Vec<u32>> = (0..papers)
        .filter(|p| p % 7 == 0)
        .map(|p| vec![p])
        .collect();

    let mut db = RelationalDb::new(papers as usize);
    db.add_relation("Cites", 2, cites);
    db.add_relation("InArea", 1, db_theory);
    println!("database: {} papers, size {}", papers, db.size());

    // The reduction of Section 2.
    let t0 = Instant::now();
    let (g, mapping) = adjacency_graph(&db);
    println!(
        "A'(D): {} nodes, {} edges (built in {:?})",
        g.n(),
        g.m(),
        t0.elapsed()
    );

    // φ(x, y): x cites an in-area paper y.
    let phi = parse_query("Cites(x, y) && InArea(y)").expect("valid query");
    let psi = rewrite_to_graph(&phi, &mapping);
    println!("rewritten query size: {} nodes", psi.formula.size());

    // The rewritten query is outside the distance-type fragment (it has a
    // quantified binary core), so PreparedQuery transparently uses the
    // fallback engine — same API, honest cost.
    let small = {
        // Demonstrate exact agreement on a small sub-database first.
        let mut small = RelationalDb::new(60);
        let mut tuples = Vec::new();
        for p in 1..60u32 {
            tuples.push(vec![p, p / 2]);
        }
        small.add_relation("Cites", 2, tuples);
        small.add_relation(
            "InArea",
            1,
            (0..60u32).filter(|p| p % 3 == 0).map(|p| vec![p]).collect(),
        );
        small
    };
    let (gs, ms) = adjacency_graph(&small);
    let phis = parse_query("Cites(x, y) && InArea(y)").unwrap();
    let psis = rewrite_to_graph(&phis, &ms);
    let via_db = materialize_db(&small, &phis);
    let prepared = PreparedQuery::prepare(&gs, &psis, &PrepareOpts::default()).unwrap();
    let via_graph: Vec<_> = prepared.enumerate().collect();
    assert_eq!(via_db, via_graph, "Lemma 2.2: φ(D) = ψ(A'(D))");
    println!(
        "Lemma 2.2 verified on the small database: {} answers agree (engine {:?})",
        via_db.len(),
        prepared.engine_kind()
    );

    // On the big database, answer a *distance* query over A'(D) directly
    // with the indexed engine: papers within citation-distance 2 hops in
    // the adjacency graph (= sharing a citation link pattern), one of them
    // in-area. Note graph distance 4 in A'(D) ≈ one Cites hop (element →
    // incidence → tuple → incidence → element).
    let q = parse_query("dist(x,y) <= 4 && @elem(x) && @elem(y) && x != y").unwrap();
    let t0 = Instant::now();
    let prepared = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    println!(
        "indexed distance query prepared in {:?} ({:?})",
        t0.elapsed(),
        prepared.engine_kind()
    );
    let t0 = Instant::now();
    let some: Vec<_> = prepared.enumerate().take(10).collect();
    println!("first 10 citation-adjacent pairs ({:?}):", t0.elapsed());
    for s in some {
        println!("  papers {} ↔ {}", s[0], s[1]);
    }
}
