//! Distance oracles on a road-network-style graph (Proposition 4.2).
//!
//! Road networks are near-planar: we use a perturbed grid. After a
//! pseudo-linear preprocessing, `dist(a,b) ≤ r` queries are answered in
//! constant time — compare against the BFS-per-query baseline.
//!
//! ```sh
//! cargo run --release --example road_network
//! ```

use nowhere_dense::baseline::BfsDistanceBaseline;
use nowhere_dense::core::dist::{DistOracle, DistOracleOpts};
use nowhere_dense::graph::generators;
use std::time::Instant;

fn main() {
    let (w, h) = (300, 300);
    let g = generators::perturbed_grid(w, h, 4_000, 7);
    let r = 6;
    println!(
        "road network: {} junctions, {} segments; radius r = {r}",
        g.n(),
        g.m()
    );

    let t0 = Instant::now();
    let oracle = DistOracle::build(&g, r, &DistOracleOpts::default());
    let prep = t0.elapsed();
    let stats = oracle.stats();
    println!(
        "oracle preprocessing: {prep:?} (recursion depth {}, {} bags, {} base cases, {} total vertices across levels)",
        stats.depth, stats.bags, stats.base_cases, stats.total_vertices
    );

    // Query workload: pseudo-random pairs.
    let n = g.n() as u64;
    let pairs: Vec<(u32, u32)> = (0..200_000u64)
        .map(|i| {
            let a = (i.wrapping_mul(0x9e3779b97f4a7c15) >> 16) % n;
            let b = (i.wrapping_mul(0xc2b2ae3d27d4eb4f) >> 16) % n;
            (a as u32, b as u32)
        })
        .collect();

    let t0 = Instant::now();
    let hits_oracle = pairs.iter().filter(|&&(a, b)| oracle.test(a, b)).count();
    let t_oracle = t0.elapsed();

    let mut bfs = BfsDistanceBaseline::new(&g);
    let t0 = Instant::now();
    let hits_bfs = pairs.iter().filter(|&&(a, b)| bfs.test(a, b, r)).count();
    let t_bfs = t0.elapsed();

    assert_eq!(hits_oracle, hits_bfs, "oracle disagrees with BFS");
    println!(
        "200k queries, {hits_oracle} within distance {r}:\n  oracle: {t_oracle:?} ({:.0} ns/query)\n  BFS:    {t_bfs:?} ({:.0} ns/query)\n  speedup: {:.1}×",
        t_oracle.as_nanos() as f64 / pairs.len() as f64,
        t_bfs.as_nanos() as f64 / pairs.len() as f64,
        t_bfs.as_secs_f64() / t_oracle.as_secs_f64()
    );
}
