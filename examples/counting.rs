//! Counting and model checking extras on top of the enumeration machinery:
//!
//! * pseudo-linear solution counting (the Grohe–Schweikardt counting result
//!   the paper's introduction cites, for our fragment);
//! * fast `(r, q)`-independence sentences — the global `ξ` checks of the
//!   Rank-Preserving Normal Form — via greedy scattered sets;
//! * index introspection (`PreparedQuery::stats`).
//!
//! ```sh
//! cargo run --release --example counting
//! ```

use nowhere_dense::core::independence;
use nowhere_dense::core::{PrepareOpts, PreparedQuery};
use nowhere_dense::graph::{generators, Vertex};
use nowhere_dense::logic::locality::evaluate_unary;
use nowhere_dense::logic::parse_query;
use std::time::Instant;

fn main() {
    let n = 40_000;
    let mut g = generators::perturbed_grid(200, 200, 2_000, 13);
    let blue: Vec<Vertex> = (0..n as Vertex).filter(|v| v % 11 == 3).collect();
    g.add_color(blue, Some("Blue".into()));
    println!("graph: {} vertices, {} edges\n", g.n(), g.m());

    // --- Counting -------------------------------------------------------
    let q = parse_query("dist(x,y) > 3 && Blue(y)").unwrap();
    let prepared = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();

    let t0 = Instant::now();
    let fast = prepared.count();
    let t_fast = t0.elapsed();
    println!("count({q}):");
    println!(
        "  pseudo-linear counter: {fast} solutions in {t_fast:?} \
         (enumerating them would emit ~{}M tuples)",
        fast / 1_000_000
    );

    // Cross-check the counter against full enumeration on a small instance.
    let mut small = generators::grid(40, 40);
    small.add_color(
        (0..1600).filter(|v| v % 11 == 3).collect(),
        Some("Blue".into()),
    );
    let sp = PreparedQuery::prepare(&small, &q, &PrepareOpts::default()).unwrap();
    let t0 = Instant::now();
    let (c_fast, c_enum) = (sp.count(), sp.enumerate().count());
    assert_eq!(c_fast, c_enum);
    println!(
        "  cross-check on a 40×40 grid: counter = enumeration = {c_enum} ({:?})",
        t0.elapsed()
    );

    // --- Independence sentences ------------------------------------------
    // Note: radii/counts are chosen so the instances are decided by the
    // greedy pass or a shallow kernel search. Deciding a k-scattered set at
    // distance ≈ diameter is NP-hard in general — the paper's non-elementary
    // constants in q are not an accident.
    println!("\nindependence sentences (the ξ checks of Thm 5.4):");
    for (k, r) in [(3usize, 5u32), (5, 20), (6, 60), (3, 380)] {
        // ∃z_1…z_k pairwise dist > r, all Blue.
        let vars: Vec<String> = (0..k).map(|i| format!("z{i}")).collect();
        let mut parts = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                parts.push(format!("dist({},{}) > {r}", vars[i], vars[j]));
            }
        }
        for v in &vars {
            parts.push(format!("Blue({v})"));
        }
        let mut src = parts.join(" && ");
        for v in vars.iter().rev() {
            src = format!("exists {v}. ({src})");
        }
        let sentence_q = parse_query(&src).unwrap();
        let sentence = independence::recognize(&sentence_q.formula).expect("independence shape");
        let witnesses = evaluate_unary(&g, &sentence.psi, sentence.var);
        let t0 = Instant::now();
        let holds = independence::holds(&g, &sentence, &witnesses);
        println!(
            "  {k} pairwise-(>{r})-scattered blue vertices exist: {holds:>5}  ({:?})",
            t0.elapsed()
        );
    }

    // --- Index introspection ---------------------------------------------
    let stats = prepared.stats();
    println!("\nindex structure of the prepared query:");
    println!("  branches:            {}", stats.branches);
    println!(
        "  distance oracles:    {} ({} vertices across levels, depth {})",
        stats.oracles, stats.oracle_vertices, stats.oracle_depth
    );
    println!(
        "  cover:               {} bags, Σ|X| = {} ({:.2}·n), degree {}",
        stats.cover_bags,
        stats.cover_total_size,
        stats.cover_total_size as f64 / g.n() as f64,
        stats.cover_degree
    );
    println!("  unary lists:         {} entries", stats.unary_list_sizes);
    println!(
        "  skip-pointer tables: {} entries (truncated: {})",
        stats.skip_entries, stats.skip_truncated
    );
}
