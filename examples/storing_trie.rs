//! Reproduce **Figure 1** of the paper: the Storing Theorem trie for
//! `n = 27`, `ε = 1/3` (so `d = 3`, `h = 3`) storing the identity function
//! on the domain `{2, 4, 5, 19, 24, 25}`, then the appendix's removal of
//! `19` (subtree cut + successor-cache rewrites).
//!
//! ```sh
//! cargo run --release --example storing_trie
//! ```

use nowhere_dense::store::{FnStore, Lookup, StoreParams};

fn main() {
    let params = StoreParams::new(27, 1, 1.0 / 3.0);
    println!(
        "Figure 1 parameters: n = {}, d = {}, h = {} (digits per key: {})\n",
        params.n,
        params.d,
        params.h,
        params.total_digits()
    );

    let mut store = FnStore::new(params);
    for key in [2u64, 4, 5, 19, 24, 25] {
        store.insert(&[key], key);
    }

    println!("Register layout after inserting {{2, 4, 5, 19, 24, 25}}:");
    for line in store.registers_dump() {
        println!("  {line}");
    }

    println!("\nLookups (constant time, successor on miss):");
    for probe in [5u64, 3, 6, 0, 26] {
        let result = match store.lookup(&[probe]) {
            Lookup::Found(v) => format!("Found({v})"),
            Lookup::Missing(Some(next)) => format!("Missing, next key = {:?}", next),
            Lookup::Missing(None) => "Missing, no larger key".to_string(),
        };
        println!("  lookup({probe:>2}) -> {result}");
    }

    println!("\nRemoving 19 (the appendix's walkthrough: Cut + Clean):");
    let regs_before = store.registers();
    store.remove(&[19]);
    println!(
        "  registers: {regs_before} -> {} (the 19-subtree was cut and its arena slot reused)",
        store.registers()
    );
    println!("  lookup(19) -> {:?}", store.lookup(&[19]));
    println!(
        "  lookup( 6) -> {:?} (cache rewritten from 19 to 24)",
        store.lookup(&[6])
    );

    println!("\nRegister layout after the removal:");
    for line in store.registers_dump() {
        println!("  {line}");
    }
}
