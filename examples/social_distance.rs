//! A "recommendation" scenario on a sparse social-style network — the
//! paper's Example 2 family at arity 3.
//!
//! The network is a bounded-degree random graph (bounded degree ⇒ nowhere
//! dense). Vertices carry roles: `Seller` and `Promoter`. Given two sellers
//! `x, y`, we stream candidate promoters `z` that are far (distance > 2)
//! from *both* sellers — e.g. to avoid conflicts of interest. This is
//! exactly the ternary query of Section 5.1.5 whose naive evaluation is
//! cubic but which the skip-pointer machinery enumerates with constant
//! delay:
//!
//! ```text
//! q(x, y, z) := dist(x,z) > 2 ∧ dist(y,z) > 2 ∧ Promoter(z) ∧ Seller(x) ∧ Seller(y)
//! ```
//!
//! ```sh
//! cargo run --release --example social_distance
//! ```

use nowhere_dense::core::{PrepareOpts, PreparedQuery};
use nowhere_dense::graph::{generators, Vertex};
use nowhere_dense::logic::parse_query;
use std::time::Instant;

fn main() {
    let n = 20_000;
    let base = generators::bounded_degree(n, 6, 2024);
    let mut g = base;
    let sellers: Vec<Vertex> = (0..n as Vertex).filter(|v| v % 97 == 0).collect();
    let promoters: Vec<Vertex> = (0..n as Vertex).filter(|v| v % 13 == 5).collect();
    println!(
        "network: {} members, {} links, {} sellers, {} promoters",
        g.n(),
        g.m(),
        sellers.len(),
        promoters.len()
    );
    g.add_color(sellers, Some("Seller".into()));
    g.add_color(promoters, Some("Promoter".into()));

    let q = parse_query(
        "q(x, y, z) := Seller(x) && Seller(y) && x != y \
         && dist(x,z) > 2 && dist(y,z) > 2 && Promoter(z)",
    )
    .expect("valid query");
    println!("query: {q}");

    let epsilon = nowhere_dense::core::Epsilon::try_new(0.5).expect("valid accuracy");
    let opts = PrepareOpts {
        epsilon: epsilon.get(),
        ..PrepareOpts::default()
    };
    let t0 = Instant::now();
    let prepared = PreparedQuery::prepare(&g, &q, &opts).expect("in fragment");
    println!(
        "preprocessing: {:?} ({:?})",
        t0.elapsed(),
        prepared.engine_kind()
    );

    // Stream the first results and measure the maximum delay.
    let t0 = Instant::now();
    let mut last = Instant::now();
    let mut max_delay = std::time::Duration::ZERO;
    let mut shown = 0;
    for sol in prepared.enumerate().take(50_000) {
        let now = Instant::now();
        max_delay = max_delay.max(now - last);
        last = now;
        if shown < 5 {
            println!(
                "  match: sellers ({}, {}) ← promoter {}",
                sol[0], sol[1], sol[2]
            );
            shown += 1;
        }
    }
    println!(
        "streamed 50k solutions in {:?}; max inter-solution delay {:?}",
        t0.elapsed(),
        max_delay
    );

    // Jump into the middle of the answer space (Theorem 2.3).
    let t0 = Instant::now();
    let jump = prepared.next_solution(&[9700, 0, 0]);
    println!(
        "next solution ≥ (9700, 0, 0): {jump:?} in {:?}",
        t0.elapsed()
    );

    // Spot-test membership (Corollary 2.4).
    if let Some(sol) = jump {
        let t0 = Instant::now();
        assert!(prepared.test(&sol));
        println!("membership re-test of {sol:?}: true in {:?}", t0.elapsed());
    }
}
