//! Quickstart: prepare a query once, then test / jump / enumerate in
//! constant time per operation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nowhere_dense::core::{Epsilon, PrepareError, PrepareOpts, PreparedQuery};
use nowhere_dense::graph::generators;
use nowhere_dense::logic::parse_query;

fn main() {
    // A sparse graph: a 64×64 grid (planar ⇒ nowhere dense) with a random
    // "Blue" unary predicate on ~10% of the vertices.
    let g = generators::with_random_colors(generators::grid(64, 64), 1, 0.1, 42);
    let g = {
        // Rename C0 -> Blue for readability.
        let members = g.color_members(nowhere_dense::graph::ColorId(0)).to_vec();
        let mut h = generators::grid(64, 64);
        h.add_color(members, Some("Blue".into()));
        h
    };
    println!("graph: {} vertices, {} edges", g.n(), g.m());

    // Paper Example 2: all pairs (x, y) with y blue and far from x.
    let q = parse_query("dist(x,y) > 2 && Blue(y)").expect("valid query");
    println!("query: {q}");

    // Pseudo-linear preprocessing (Theorem 2.3). Every failure mode is a
    // typed error — match instead of crashing.
    let epsilon = Epsilon::try_new(0.5).expect("0.5 is a valid accuracy");
    let opts = PrepareOpts {
        epsilon: epsilon.get(),
        ..PrepareOpts::default()
    };
    let t0 = std::time::Instant::now();
    let prepared = match PreparedQuery::prepare(&g, &q, &opts) {
        Ok(p) => p,
        Err(PrepareError::UnsupportedFragment(reason)) => {
            eprintln!("query outside the fragment: {reason}");
            return;
        }
        Err(PrepareError::BudgetExceeded { exceeded, partial }) => {
            eprintln!(
                "budget hit in {}: got as far as {partial:?}",
                exceeded.phase
            );
            return;
        }
        Err(PrepareError::InvalidInput(bad)) => {
            eprintln!("invalid input: {bad}");
            return;
        }
    };
    println!(
        "prepared in {:?} using engine {:?}",
        t0.elapsed(),
        prepared.engine_kind()
    );

    // Corollary 2.4: constant-time testing.
    println!("test (0, 4095): {}", prepared.test(&[0, 4095]));
    println!("test (0, 1):    {}", prepared.test(&[0, 1]));

    // Theorem 2.3: next solution ≥ a given tuple.
    let probe = vec![100, 2000];
    println!(
        "next solution ≥ {probe:?}: {:?}",
        prepared.next_solution(&probe)
    );

    // Corollary 2.5: constant-delay enumeration in lexicographic order.
    let t0 = std::time::Instant::now();
    let first: Vec<_> = prepared.enumerate().take(5).collect();
    println!("first 5 solutions ({:?}): {first:?}", t0.elapsed());

    let t0 = std::time::Instant::now();
    let count = prepared.enumerate().count();
    println!(
        "total solutions: {count} (full enumeration took {:?}, {:.0} ns/solution)",
        t0.elapsed(),
        t0.elapsed().as_nanos() as f64 / count.max(1) as f64
    );
}
