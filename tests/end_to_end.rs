//! Cross-crate integration tests: the full pipeline from query text (or a
//! relational database) to constant-delay enumeration, exercised end to end
//! and checked against naive semantics.

use nowhere_dense::baseline::{MaterializingEnumerator, NaiveEnumerator, NaiveTester};
use nowhere_dense::core::{EngineKind, PrepareOpts, PreparedQuery};
use nowhere_dense::graph::relational::{adjacency_graph, RelationalDb};
use nowhere_dense::graph::{generators, ColoredGraph, Vertex};
use nowhere_dense::logic::eval::materialize_db;
use nowhere_dense::logic::parse_query;
use nowhere_dense::logic::relational::rewrite_to_graph;

fn colored(mut g: ColoredGraph, seed: u64) -> ColoredGraph {
    let n = g.n() as Vertex;
    let blue: Vec<Vertex> = (0..n)
        .filter(|v| (v.wrapping_mul(2654435761) ^ seed as u32).is_multiple_of(3))
        .collect();
    let red: Vec<Vertex> = (0..n)
        .filter(|v| (v.wrapping_mul(40503) ^ seed as u32) % 5 == 1)
        .collect();
    g.add_color(blue, Some("Blue".into()));
    g.add_color(red, Some("Red".into()));
    g
}

#[test]
fn paper_examples_pipeline() {
    let g = colored(generators::grid(7, 7), 3);
    for src in [
        "dist(x,y) <= 2",                            // Example 1-A
        "dist(x,y) > 2 && Blue(y)",                  // Example 2
        "dist(x,z) > 2 && dist(y,z) > 2 && Blue(z)", // Example 2, arity 3
    ] {
        let q = parse_query(src).unwrap();
        let prepared = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
        assert!(matches!(prepared.engine_kind(), EngineKind::Indexed { .. }));
        let indexed: Vec<_> = prepared.enumerate().collect();
        let naive: Vec<_> = NaiveEnumerator::new(&g, q.clone()).collect();
        assert_eq!(indexed, naive, "query {src}");

        // Testing agrees with naive evaluation on a probe sweep.
        let tester = NaiveTester::new(&g, q.clone());
        let k = q.arity();
        for probe_seed in 0..25u32 {
            let probe: Vec<Vertex> = (0..k)
                .map(|i| probe_seed.wrapping_mul(31 + i as u32 * 7) % g.n() as u32)
                .collect();
            assert_eq!(
                prepared.test(&probe),
                tester.test(&probe),
                "{src} @ {probe:?}"
            );
        }
    }
}

#[test]
fn enumeration_in_lex_order_with_jumps() {
    let g = colored(generators::random_tree(120, 5), 8);
    let q = parse_query("dist(x,y) > 3 && Blue(y) && Red(x)").unwrap();
    let prepared = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    let all: Vec<_> = prepared.enumerate().collect();
    assert!(all.windows(2).all(|w| w[0] < w[1]), "strictly increasing");

    // Theorem 2.3 contract at every gap: next_solution(t+1) from each
    // solution is the next solution.
    for w in all.windows(2) {
        let mut probe = w[0].clone();
        *probe.last_mut().unwrap() += 1; // may overflow n; next_solution handles
        if probe.last().copied().unwrap() as usize >= g.n() {
            continue;
        }
        assert_eq!(prepared.next_solution(&probe).as_ref(), Some(&w[1]));
    }
}

#[test]
fn relational_reduction_end_to_end() {
    let mut db = RelationalDb::new(40);
    let mut tuples = Vec::new();
    for p in 1..40u32 {
        tuples.push(vec![p, p / 3]);
        if p % 4 == 0 {
            tuples.push(vec![p, p - 1]);
        }
    }
    db.add_relation("R", 2, tuples);
    db.add_relation(
        "S",
        1,
        (0..40u32).filter(|p| p % 5 == 0).map(|p| vec![p]).collect(),
    );

    for src in [
        "R(x, y)",
        "R(x, y) && S(y)",
        "exists z. (R(x, z) && R(y, z)) && x != y",
    ] {
        let phi = parse_query(src).unwrap();
        let (g, mapping) = adjacency_graph(&db);
        let psi = rewrite_to_graph(&phi, &mapping);
        let via_db = materialize_db(&db, &phi);
        let prepared = PreparedQuery::prepare(&g, &psi, &PrepareOpts::default()).unwrap();
        let via_graph: Vec<_> = prepared.enumerate().collect();
        assert_eq!(via_graph, via_db, "query {src}");
    }
}

#[test]
fn union_queries_merge_in_order() {
    let g = colored(generators::cycle(40), 1);
    let q = parse_query("E(x,y) || (dist(x,y) > 4 && Blue(y)) || x = y").unwrap();
    let prepared = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    let got: Vec<_> = prepared.enumerate().collect();
    let want = MaterializingEnumerator::prepare(&g, &q);
    assert_eq!(got, want.iter().cloned().collect::<Vec<_>>());
    assert!(got.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn dense_graph_correctness_degraded_performance() {
    // On a dense graph the guarantees degrade but answers stay exact.
    let g = colored(generators::gnm(40, 300, 3), 2);
    let q = parse_query("dist(x,y) > 1 && Blue(y)").unwrap();
    let prepared = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    let naive: Vec<_> = NaiveEnumerator::new(&g, q).collect();
    assert_eq!(prepared.enumerate().collect::<Vec<_>>(), naive);
}

#[test]
fn larger_scale_smoke() {
    // A bigger sparse instance: verify a sample rather than the full set.
    let g = colored(generators::bounded_degree(3_000, 4, 11), 4);
    let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
    let prepared = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    let tester = NaiveTester::new(&g, q);
    let first: Vec<_> = prepared.enumerate().take(500).collect();
    assert_eq!(first.len(), 500);
    assert!(first.windows(2).all(|w| w[0] < w[1]));
    for sol in first.iter().step_by(50) {
        assert!(tester.test(sol), "false positive {sol:?}");
    }
    // No solution was skipped before the first one.
    if let Some(first_sol) = first.first() {
        let start = prepared.next_solution(&[0, 0]).unwrap();
        assert_eq!(&start, first_sol);
    }
}
